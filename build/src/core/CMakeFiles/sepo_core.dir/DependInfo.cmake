
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hash_table.cpp" "src/core/CMakeFiles/sepo_core.dir/hash_table.cpp.o" "gcc" "src/core/CMakeFiles/sepo_core.dir/hash_table.cpp.o.d"
  "/root/repo/src/core/host_table.cpp" "src/core/CMakeFiles/sepo_core.dir/host_table.cpp.o" "gcc" "src/core/CMakeFiles/sepo_core.dir/host_table.cpp.o.d"
  "/root/repo/src/core/sepo_driver.cpp" "src/core/CMakeFiles/sepo_core.dir/sepo_driver.cpp.o" "gcc" "src/core/CMakeFiles/sepo_core.dir/sepo_driver.cpp.o.d"
  "/root/repo/src/core/sepo_lookup.cpp" "src/core/CMakeFiles/sepo_core.dir/sepo_lookup.cpp.o" "gcc" "src/core/CMakeFiles/sepo_core.dir/sepo_lookup.cpp.o.d"
  "/root/repo/src/core/table_io.cpp" "src/core/CMakeFiles/sepo_core.dir/table_io.cpp.o" "gcc" "src/core/CMakeFiles/sepo_core.dir/table_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alloc/CMakeFiles/sepo_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/bigkernel/CMakeFiles/sepo_bigkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/sepo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sepo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
