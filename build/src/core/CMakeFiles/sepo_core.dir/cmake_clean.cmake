file(REMOVE_RECURSE
  "CMakeFiles/sepo_core.dir/hash_table.cpp.o"
  "CMakeFiles/sepo_core.dir/hash_table.cpp.o.d"
  "CMakeFiles/sepo_core.dir/host_table.cpp.o"
  "CMakeFiles/sepo_core.dir/host_table.cpp.o.d"
  "CMakeFiles/sepo_core.dir/sepo_driver.cpp.o"
  "CMakeFiles/sepo_core.dir/sepo_driver.cpp.o.d"
  "CMakeFiles/sepo_core.dir/sepo_lookup.cpp.o"
  "CMakeFiles/sepo_core.dir/sepo_lookup.cpp.o.d"
  "CMakeFiles/sepo_core.dir/table_io.cpp.o"
  "CMakeFiles/sepo_core.dir/table_io.cpp.o.d"
  "libsepo_core.a"
  "libsepo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
