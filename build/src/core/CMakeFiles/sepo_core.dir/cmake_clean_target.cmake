file(REMOVE_RECURSE
  "libsepo_core.a"
)
