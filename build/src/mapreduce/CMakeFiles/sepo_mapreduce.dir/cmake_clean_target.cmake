file(REMOVE_RECURSE
  "libsepo_mapreduce.a"
)
