
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/runtime.cpp" "src/mapreduce/CMakeFiles/sepo_mapreduce.dir/runtime.cpp.o" "gcc" "src/mapreduce/CMakeFiles/sepo_mapreduce.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sepo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bigkernel/CMakeFiles/sepo_bigkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/sepo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sepo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sepo_alloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
