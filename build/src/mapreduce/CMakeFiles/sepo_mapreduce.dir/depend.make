# Empty dependencies file for sepo_mapreduce.
# This may be replaced when dependencies are built.
