file(REMOVE_RECURSE
  "CMakeFiles/sepo_mapreduce.dir/runtime.cpp.o"
  "CMakeFiles/sepo_mapreduce.dir/runtime.cpp.o.d"
  "libsepo_mapreduce.a"
  "libsepo_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sepo_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
