// Page View Count end-to-end — the paper's running example (§III-B).
//
// Generates a synthetic web log, counts URL hits on the virtual GPU with the
// SEPO hash table (combining organization), then cross-checks the result
// against the multi-threaded CPU baseline and prints the most-viewed pages.
//
// Usage: page_view_count [input_megabytes]    (default 4)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/engine.hpp"
#include "baselines/cpu_hash_table.hpp"
#include "common/parse.hpp"
#include "common/strings.hpp"

int main(int argc, char** argv) {
  using namespace sepo;
  double mb = 4.0;
  if (argc > 1) {
    const auto parsed = parse_number<double>(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "invalid input_megabytes: '%s'\n", argv[1]);
      return 1;
    }
    mb = *parsed;
  }

  // Resolve the app and both implementations through the engine registry —
  // the same seam sepo_cli and the benches dispatch through.
  const apps::AppInfo& app = *apps::find_app("pvc");
  std::printf("generating ~%.1f MiB of web log...\n", mb);
  const std::string input =
      app.generate(static_cast<std::size_t>(mb * 1024 * 1024), /*seed=*/2024);

  std::printf("running on the SEPO virtual GPU (4 MiB device)...\n");
  const apps::RunResult gpu = apps::find_engine("sepo-gpu")->run(app, input, {});
  std::printf("running the CPU multi-threaded baseline...\n");
  const apps::RunResult cpu = apps::find_engine("cpu")->run(app, input, {});

  std::printf("\n  SEPO iterations : %u\n", gpu.iterations);
  std::printf("  distinct URLs   : %llu\n",
              static_cast<unsigned long long>(gpu.keys));
  std::printf("  table size      : %.2f MiB (device heap: %.2f MiB)\n",
              static_cast<double>(gpu.table_bytes) / (1 << 20),
              static_cast<double>(gpu.heap_bytes) / (1 << 20));
  std::printf("  simulated time  : GPU %.3f ms, CPU %.3f ms -> speedup %.2f\n",
              gpu.sim_seconds * 1e3, cpu.sim_seconds * 1e3,
              cpu.sim_seconds / gpu.sim_seconds);
  std::printf("  results         : %s\n",
              gpu.checksum == cpu.checksum ? "GPU == CPU (checksums match)"
                                           : "MISMATCH");

  // Top pages, read from the CPU baseline table (any of the two would do —
  // we just validated they agree).
  gpusim::RunStats stats;
  baselines::CpuHashTableConfig tcfg;
  tcfg.combiner = core::combine_sum_u64;
  baselines::CpuHashTable table(stats, tcfg);
  {
    const RecordIndex idx = index_lines(input);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      // Reuse the app's parser through a tiny emitter.
      struct E final : mapreduce::Emitter {
        baselines::CpuHashTable* t;
        core::Status emit(std::string_view k,
                          std::span<const std::byte> v) override {
          t->insert(0, k, v);
          return core::Status::kSuccess;
        }
      } em;
      em.t = &table;
      app.standalone->map_record(idx.record(input.data(), i), em);
    }
  }
  std::vector<std::pair<std::uint64_t, std::string>> top;
  table.for_each([&](std::string_view k, std::span<const std::byte> v) {
    std::uint64_t count = 0;
    std::memcpy(&count, v.data(), std::min<std::size_t>(8, v.size()));
    top.emplace_back(count, std::string(k));
  });
  std::partial_sort(top.begin(), top.begin() + std::min<std::size_t>(5, top.size()),
                    top.end(), std::greater<>());
  std::printf("\n  top pages:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i)
    std::printf("    %8llu  %s\n",
                static_cast<unsigned long long>(top[i].first),
                top[i].second.c_str());
  return 0;
}
