// Word Count on the MapReduce runtime (paper §V) — MAP_REDUCE mode.
//
// The runtime stages input through BigKernel, runs map instances on the
// virtual GPU, and uses the SEPO hash table in the combining organization
// with the user's reduce/combine callback ("the reduce phase is embedded
// into the map phase"). Compared against the Phoenix++-style CPU runtime.
//
// Usage: wordcount_mapreduce [input_megabytes]    (default 2)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/engine.hpp"
#include "baselines/phoenix.hpp"
#include "common/parse.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "mapreduce/runtime.hpp"

int main(int argc, char** argv) {
  using namespace sepo;
  double mb = 2.0;
  if (argc > 1) {
    const auto parsed = parse_number<double>(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "invalid input_megabytes: '%s'\n", argv[1]);
      return 1;
    }
    mb = *parsed;
  }

  const apps::AppInfo& wc = *apps::find_app("wc");
  std::printf("generating ~%.1f MiB of text...\n", mb);
  const std::string input =
      wc.generate(static_cast<std::size_t>(mb * 1024 * 1024), /*seed=*/99);

  // --- registry-dispatched comparison: our runtime vs Phoenix++ ---
  const apps::RunResult gpu = apps::find_engine("sepo-mr")->run(wc, input, {});
  const apps::RunResult cpu = apps::find_engine("phoenix")->run(wc, input, {});
  std::printf("GPU MapReduce: %u SEPO iteration(s), %llu distinct words\n",
              gpu.iterations, static_cast<unsigned long long>(gpu.keys));
  std::printf("Phoenix (CPU): %llu distinct words\n",
              static_cast<unsigned long long>(cpu.keys));
  std::printf("result digests: %s\n",
              gpu.checksum == cpu.checksum ? "match" : "MISMATCH");

  // --- the low-level runtime API, for direct access to the final table ---
  gpusim::Device device(4u << 20);
  gpusim::ThreadPool pool;
  gpusim::RunStats stats;
  gpusim::ExecContext ctx(device, pool, stats);
  mapreduce::RuntimeConfig rcfg;
  // Size the staging ring to the input's record lengths and the device.
  apps::choose_chunking(index_lines(input), apps::GpuConfig{}, rcfg.pipeline);
  mapreduce::MapReduceRuntime runtime(ctx, rcfg);
  const mapreduce::RunOutcome out = runtime.run(input, wc.mr->spec());

  // Top words.
  std::vector<std::pair<std::uint64_t, std::string>> top;
  out.table->for_each([&](std::string_view k, std::span<const std::byte> v) {
    std::uint64_t c = 0;
    std::memcpy(&c, v.data(), 8);
    top.emplace_back(c, std::string(k));
  });
  std::partial_sort(top.begin(),
                    top.begin() + std::min<std::size_t>(8, top.size()),
                    top.end(), std::greater<>());
  std::printf("\ntop words:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, top.size()); ++i)
    std::printf("  %8llu  %s\n", static_cast<unsigned long long>(top[i].first),
                top[i].second.c_str());
  return 0;
}
