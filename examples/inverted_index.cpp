// Inverted Index end-to-end — the multi-valued organization (paper §IV-B,
// Figure 3): a 1:N mapping from hyperlinks to the pages containing them.
//
// Demonstrates key/value page separation, resident key pages across SEPO
// iterations, and group queries on the finished host table.
//
// Usage: inverted_index [input_megabytes]    (default 3)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/standalone_app.hpp"
#include "bigkernel/pipeline.hpp"
#include "common/parse.hpp"
#include "common/strings.hpp"
#include "core/sepo_driver.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "mapreduce/sepo_emitter.hpp"

int main(int argc, char** argv) {
  using namespace sepo;
  double mb = 3.0;
  if (argc > 1) {
    const auto parsed = parse_number<double>(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "invalid input_megabytes: '%s'\n", argv[1]);
      return 1;
    }
    mb = *parsed;
  }

  apps::InvertedIndexApp app;
  std::printf("generating ~%.1f MiB of HTML pages...\n", mb);
  const std::string input =
      app.generate(static_cast<std::size_t>(mb * 1024 * 1024), /*seed=*/7);

  // Assemble the pipeline by hand (the framework's run_gpu() does exactly
  // this) to show the moving parts.
  gpusim::Device device(4u << 20);
  gpusim::ThreadPool pool;
  gpusim::RunStats stats;
  gpusim::ExecContext ctx(device, pool, stats);

  const RecordIndex index = index_lines(input);
  bigkernel::PipelineConfig pcfg;
  apps::choose_chunking(index, apps::GpuConfig{}, pcfg);
  bigkernel::InputPipeline pipe(ctx, pcfg);

  core::HashTableConfig tcfg;
  tcfg.org = core::Organization::kMultiValued;  // <link, [pages...]>
  tcfg.num_buckets = 1u << 14;
  tcfg.buckets_per_group = 512;
  tcfg.page_size = 8u << 10;
  core::SepoHashTable table(ctx, tcfg);

  ProgressTracker progress(index.size(), /*multi_emit=*/true);
  core::SepoDriver driver;
  const core::DriverResult res = driver.run(
      table, pipe, input, index, progress,
      [&](std::size_t rec, std::string_view body) {
        mapreduce::SepoEmitter em(table, progress, rec);
        app.map_record(body, em);  // emits <href, pagePath> per link
        return em.failed() ? core::Status::kPostpone : core::Status::kSuccess;
      });

  const core::HostTable host = table.finalize();
  std::printf("\n  pages indexed    : %zu\n", index.size());
  std::printf("  SEPO iterations  : %u\n", res.iterations);
  std::printf("  distinct links   : %zu\n", host.entry_count());
  std::printf("  link occurrences : %zu\n", host.value_count());
  std::printf("  table size       : %.2f MiB (heap %.2f MiB)\n",
              static_cast<double>(table.table_stats().table_bytes) / (1 << 20),
              static_cast<double>(table.page_pool().heap_bytes()) / (1 << 20));

  // Show one group, Figure-3 style.
  std::size_t shown = 0;
  host.for_each_group([&](std::string_view link,
                          const std::vector<std::span<const std::byte>>& pages) {
    if (shown++ != 0 || pages.size() < 3) {
      if (pages.size() < 3) --shown;
      return;
    }
    std::printf("\n  example group: %.*s is linked from %zu pages:\n",
                static_cast<int>(link.size()), link.data(), pages.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(3, pages.size()); ++i)
      std::printf("    - %.*s\n", static_cast<int>(pages[i].size()),
                  reinterpret_cast<const char*>(pages[i].data()));
  });
  return 0;
}
