// DNA assembly end-to-end: both phases of the paper's most demanding app.
//
// Phase 1 (the paper's §VI-A workload): build the k-mer -> extension-edge
// table on the virtual GPU with the SEPO hash table; the table grows to
// several times the device heap.
//
// Phase 2 (the paper's §IV-C "mental exercise", implemented in
// core/sepo_lookup.hpp): walk contigs through the larger-than-memory table
// with SEPO *lookups* — unique-extension chains are followed Meraculous-
// style, batching the next-kmer queries so segment staging is amortized.
//
// Usage: dna_assembly [input_megabytes]    (default 3)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/standalone_app.hpp"
#include "bigkernel/pipeline.hpp"
#include "common/parse.hpp"
#include "core/sepo_driver.hpp"
#include "core/sepo_lookup.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"
#include "mapreduce/sepo_emitter.hpp"

namespace {
constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
}

int main(int argc, char** argv) {
  using namespace sepo;
  double mb = 3.0;
  if (argc > 1) {
    const auto parsed = parse_number<double>(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "invalid input_megabytes: '%s'\n", argv[1]);
      return 1;
    }
    mb = *parsed;
  }

  apps::DnaAssemblyApp app;
  std::printf("generating ~%.1f MiB of reads...\n", mb);
  const std::string input =
      app.generate(static_cast<std::size_t>(mb * 1024 * 1024), /*seed=*/12);

  // ---- phase 1: k-mer spectrum with extension edges ----
  gpusim::Device dev(4u << 20);
  gpusim::ThreadPool pool;
  gpusim::RunStats stats;
  gpusim::ExecContext ctx(dev, pool, stats);
  const RecordIndex idx = index_lines(input);
  bigkernel::PipelineConfig pcfg;
  apps::choose_chunking(idx, apps::GpuConfig{}, pcfg);
  bigkernel::InputPipeline pipe(ctx, pcfg);
  core::HashTableConfig tcfg;
  tcfg.combiner = app.combiner();
  core::SepoHashTable table(ctx, tcfg);
  ProgressTracker progress(idx.size(), /*multi_emit=*/true);
  core::SepoDriver driver;
  const core::DriverResult res = driver.run(
      table, pipe, input, idx, progress,
      [&](std::size_t rec, std::string_view body) {
        mapreduce::SepoEmitter em(table, progress, rec);
        app.map_record(body, em);
        return em.failed() ? core::Status::kPostpone : core::Status::kSuccess;
      });
  const core::HostTable kmers = table.finalize();
  std::printf("phase 1: %zu distinct %zu-mers in %u SEPO iterations, "
              "table %.2f MiB vs heap %.2f MiB\n",
              kmers.entry_count(), apps::DnaAssemblyApp::kK, res.iterations,
              static_cast<double>(table.table_stats().table_bytes) / (1 << 20),
              static_cast<double>(table.page_pool().heap_bytes()) / (1 << 20));

  // ---- phase 2: contig walking via SEPO lookups ----
  // A k-mer with exactly one successor edge extends a contig; walk forward
  // from seed k-mers until the extension is ambiguous or absent. Lookups go
  // through a (smaller) device in segment-staged batches.
  gpusim::Device lookup_dev(1u << 20);
  gpusim::RunStats lookup_stats;
  gpusim::ExecContext lookup_ctx(lookup_dev, pool, lookup_stats);
  core::SepoLookupEngine engine(lookup_ctx, kmers);
  std::printf("phase 2: lookup engine with %u segments over %.2f MiB\n",
              engine.segment_count(),
              static_cast<double>(engine.serialized_bytes()) / (1 << 20));

  // Seeds: a sample of k-mers.
  std::vector<std::string> frontier;
  kmers.for_each([&](std::string_view k, std::span<const std::byte>) {
    if (frontier.size() < 2000 && (hash_key(k) & 15) == 0)
      frontier.emplace_back(k);
  });
  std::vector<std::string> contigs(frontier.begin(), frontier.end());

  std::size_t total_lookups = 0, rounds = 0;
  std::vector<bool> active(frontier.size(), true);
  for (int round = 0; round < 64; ++round) {
    // Batch the frontier's next-kmer queries (this is what makes SEPO
    // lookups efficient: one staging pass answers the whole frontier).
    std::vector<std::string> queries;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (!active[i]) continue;
      queries.push_back(frontier[i]);
      owner.push_back(i);
    }
    if (queries.empty()) break;
    ++rounds;
    total_lookups += queries.size();
    std::vector<std::optional<std::vector<std::byte>>> answers;
    (void)engine.lookup_values(queries, answers);

    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::size_t i = owner[q];
      if (!answers[q] || answers[q]->size() < 4) {
        active[i] = false;
        continue;
      }
      std::uint32_t edges = 0;
      std::memcpy(&edges, answers[q]->data(), 4);
      const std::uint32_t next = (edges >> 4) & 0xF;  // successor-base bits
      if (std::popcount(next) != 1) {  // ambiguous or dead end
        active[i] = false;
        continue;
      }
      const char base = kBases[std::countr_zero(next)];
      contigs[i].push_back(base);
      frontier[i] = contigs[i].substr(contigs[i].size() -
                                      apps::DnaAssemblyApp::kK);
    }
  }

  std::size_t longest = 0, extended = 0;
  for (const auto& c : contigs) {
    longest = std::max(longest, c.size());
    if (c.size() > apps::DnaAssemblyApp::kK) ++extended;
  }
  std::printf("phase 2: %zu seeds, %zu extended into contigs, longest %zu bp; "
              "%zu lookups in %zu batched rounds\n",
              contigs.size(), extended, longest, total_lookups, rounds);
  std::printf("lookup bus traffic: %.2f MiB staged in %llu bulk transfers\n",
              static_cast<double>(lookup_dev.bus().snapshot().h2d_bytes) /
                  (1 << 20),
              static_cast<unsigned long long>(
                  lookup_dev.bus().snapshot().h2d_txns));
  return 0;
}
