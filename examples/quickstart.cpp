// Quickstart: the SEPO hash table in ~60 lines.
//
// Creates a virtual GPU with a deliberately tiny heap, inserts more
// key-value pairs than the device can hold, and lets the SEPO protocol
// (postpone -> flush -> retry) absorb the overflow. Shows the core API:
//   Device / ThreadPool / RunStats    — the execution substrate
//   SepoHashTable                     — insert(), the iteration protocol
//   HostTable                         — the final CPU-side view
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/hash_table.hpp"
#include "gpusim/device.hpp"
#include "gpusim/exec_context.hpp"

int main() {
  using namespace sepo;

  // A "GPU" with 256 KiB of memory. After the bucket array is carved out,
  // the heap gets what remains (§IV-A of the paper).
  gpusim::Device device(256u << 10);
  gpusim::ThreadPool pool;
  gpusim::RunStats stats;
  gpusim::ExecContext ctx(device, pool, stats);

  core::HashTableConfig cfg;
  cfg.org = core::Organization::kCombining;  // duplicate keys are summed
  cfg.combiner = core::combine_sum_u64;
  cfg.num_buckets = 1u << 10;
  cfg.buckets_per_group = 64;
  cfg.page_size = 4u << 10;
  core::SepoHashTable table(ctx, cfg);

  std::printf("device: %zu KiB, heap: %zu KiB\n", device.capacity() >> 10,
              table.page_pool().heap_bytes() >> 10);

  // 20k distinct keys, several times the heap size in total. A real
  // application would run this loop inside a gpusim::launch kernel; the
  // insert API is identical.
  constexpr int kRounds = 2, kKeys = 20000;
  int iterations = 0;
  bool done = false;
  std::vector<bool> stored(kKeys, false);
  while (!done) {
    ++iterations;
    table.begin_iteration();
    done = true;
    for (int k = 0; k < kKeys; ++k) {
      if (stored[k]) continue;  // the SEPO "processed" bitmap
      const std::string key = "user-" + std::to_string(k);
      if (table.insert_u64(key, kRounds) == core::Status::kSuccess)
        stored[k] = true;
      else
        done = false;  // postponed: re-issue next iteration
    }
    // Heap full or input exhausted: flush device pages to host memory and
    // recycle them (Figure 5 (c) of the paper).
    table.end_iteration();
    std::printf("iteration %d: %llu pairs stored so far, table %.1f KiB\n",
                iterations,
                static_cast<unsigned long long>(stats.snapshot().inserts_new),
                static_cast<double>(table.table_stats().table_bytes) / 1024.0);
  }

  // Everything now lives in host memory; the host chains are complete.
  const core::HostTable host = table.finalize();
  std::printf("\nfinished in %d SEPO iterations\n", iterations);
  std::printf("distinct keys: %zu (expected %d)\n", host.entry_count(), kKeys);
  std::printf("user-7 count:  %llu (expected %d)\n",
              static_cast<unsigned long long>(*host.lookup_u64("user-7")),
              kRounds);
  std::printf("table bytes:   %.1f KiB vs heap %.1f KiB — larger than "
              "device memory, as promised\n",
              static_cast<double>(table.table_stats().table_bytes) / 1024.0,
              static_cast<double>(table.page_pool().heap_bytes()) / 1024.0);
  return 0;
}
